// lbp-bench regenerates the paper's evaluation: Figures 19, 20 and 21
// (the five matrix multiplication versions on 4-, 16- and 64-core LBP
// machines, with the Xeon-Phi-like model on Figure 21) and the companion
// experiments of DESIGN.md: cycle determinism (det), latency hiding vs
// hart count (harts), deterministic I/O (io), two-phase locality
// (locality), the design-parameter sweeps (ablate), the Figure 15
// multi-chip lines (chips), the input-to-actuation sweep (response) and
// the 64/256/1024-core weak-scaling sweep (fig 22, experiment E18).
//
// Independent simulations (matmul variants, sweep points, determinism
// repeats) fan out across -parallel worker goroutines; each simulated
// machine stays single-threaded, so every figure row and trace digest is
// identical for any -parallel value. The matmul figures additionally
// record a machine-readable BENCH_fig<N>.json (rows, wall time, host
// info) next to -outdir so the performance trajectory can be tracked
// across changes.
//
// Usage:
//
//	lbp-bench [-parallel N] [-simworkers N] [-json] [-outdir DIR] [-profile] [-phases N] [-cpuprofile FILE] [-memprofile FILE] -fig 19|20|21|22|det|harts|io|locality|ablate|chips|response|all
//
// -profile embeds a deterministic performance-counter snapshot (cycle
// attribution by stall cause, retired mix, stage occupancy, per-link-class
// wait cycles, local/remote latency histograms) in every matmul figure row
// and therefore in the BENCH_fig<N>.json records. Counters never feed back
// into simulated timing, so rows and digests are byte-identical with and
// without -profile, for any -parallel value.
//
// -simworkers shards the cycle loop of each simulated machine across N
// host threads (0 = all CPUs); like -parallel, it changes only wall time,
// never a simulated result. The matmul BENCH records include per-row host
// wall time and simulated-cycles-per-second so the effect is measurable.
//
// -cpuprofile / -memprofile capture host-side pprof profiles of the
// simulator itself (the whole lbp-bench invocation), for finding the next
// simulator hot spot — unrelated to the simulated-machine -profile.
//
// -phases sets the arrival-phase count of the -fig response sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/figures"
	"repro/internal/lbp"
	"repro/internal/phimodel"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// figNames lists the valid -fig values in run order.
var figNames = []string{"19", "20", "21", "22", "det", "harts", "io", "locality", "ablate", "chips", "response"}

func main() {
	fig := flag.String("fig", "all", "which figure/experiment to run: "+strings.Join(figNames, "|")+"|all")
	asJSON := flag.Bool("json", false, "emit matmul figure rows as JSON instead of tables")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent simulations (0 = all CPUs, 1 = sequential)")
	outdir := flag.String("outdir", ".", "directory receiving the BENCH_fig<N>.json records")
	profile := flag.Bool("profile", false, "embed deterministic perf-counter snapshots in matmul rows and BENCH records")
	phases := flag.Int("phases", 24, "arrival phases for the -fig response sweep (must be positive)")
	simWorkers := flag.Int("simworkers", 1, "host threads stepping each simulated machine (0 = all CPUs, 1 = single-threaded)")
	cpuProfile := flag.String("cpuprofile", "", "write a host-side CPU pprof profile of the simulator to `file`")
	memProfile := flag.String("memprofile", "", "write a host-side heap pprof profile of the simulator to `file`")
	flag.Parse()
	// Reject a bad sweep size here, before any figure runs: a non-positive
	// phase count cannot produce a response report (RunResponseSweep also
	// guards this; the flag layer turns it into a usage error).
	if *phases <= 0 {
		fmt.Fprintf(os.Stderr, "lbp-bench: -phases %d must be positive\n", *phases)
		os.Exit(2)
	}
	jsonMode = *asJSON
	benchDir = *outdir
	responsePhases = *phases
	figures.Parallelism = *parallel
	figures.Profile = *profile
	figures.SimWorkers = *simWorkers
	figures.RecordThroughput = true
	// A profile that fails to flush or close is silently truncated and
	// useless; report the error and make the run exit nonzero. The exit
	// check is registered first so it runs after every profile defer.
	profileErr := false
	defer func() {
		if profileErr {
			os.Exit(1)
		}
	}()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbp-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lbp-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "lbp-bench: -cpuprofile: close: %v\n", err)
				profileErr = true
			}
		}()
		defer pprof.StopCPUProfile() // LIFO: stop (and flush) before closing f
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lbp-bench: -memprofile: %v\n", err)
				profileErr = true
				return
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lbp-bench: -memprofile: %v\n", err)
				profileErr = true
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "lbp-bench: -memprofile: close: %v\n", err)
				profileErr = true
			}
		}()
	}
	matched := false
	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		matched = true
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "lbp-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		// In JSON mode stdout carries only machine-readable rows (so two
		// runs diff byte-identically); progress goes to stderr.
		progress := os.Stdout
		if jsonMode {
			progress = os.Stderr
		}
		fmt.Fprintf(progress, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	run("19", func() error { return matmulFigure(16) })
	run("20", func() error { return matmulFigure(64) })
	run("21", func() error { return matmulFigure(256) })
	run("22", scaleFigure)
	run("det", determinism)
	run("harts", ablation)
	run("io", ioExperiment)
	run("locality", locality)
	run("ablate", designAblations)
	run("chips", chips)
	run("response", response)
	if !matched {
		fmt.Fprintf(os.Stderr, "lbp-bench: unknown -fig %q (valid: %s, all)\n",
			*fig, strings.Join(figNames, ", "))
		os.Exit(2)
	}
}

var (
	jsonMode       bool
	benchDir       string
	responsePhases int
)

// benchRecord is the persisted, machine-readable form of one matmul
// figure run: the figure rows plus enough host context to compare wall
// times across changes. Rows and digests are deterministic; wall time and
// host fields are the only parts expected to differ between hosts.
type benchRecord struct {
	Figure      int                 `json:"figure"`
	Rows        []figures.MatmulRow `json:"rows"`
	Phi         *phimodel.Result    `json:"xeonPhiModel,omitempty"`
	WallTimeSec float64             `json:"wallTimeSec"`
	Parallel    int                 `json:"parallel"`   // the -parallel setting
	SimWorkers  int                 `json:"simWorkers"` // the -simworkers setting
	Profile     bool                `json:"profile"`    // rows carry perf snapshots
	Host        hostInfo            `json:"host"`
	GeneratedAt string              `json:"generatedAt"`
}

type hostInfo struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"goVersion"`
}

// writeBenchRecord saves BENCH_fig<N>.json into benchDir.
func writeBenchRecord(figNo int, rows []figures.MatmulRow, phi *phimodel.Result, wall time.Duration) error {
	rec := benchRecord{
		Figure:      figNo,
		Rows:        rows,
		Phi:         phi,
		WallTimeSec: wall.Seconds(),
		Parallel:    figures.Parallelism,
		SimWorkers:  figures.SimWorkers,
		Profile:     figures.Profile,
		Host: hostInfo{
			GoOS:       runtime.GOOS,
			GoArch:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(benchDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(benchDir, fmt.Sprintf("BENCH_fig%d.json", figNo))
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func matmulFigure(h int) error {
	start := time.Now()
	rows, err := figures.RunMatmulFigure(h)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	var phi *phimodel.Result
	if h == 256 {
		r := phimodel.Default().TiledMatmul(256)
		phi = &r
	}
	if err := writeBenchRecord(figures.FigureForHarts(h), rows, phi, wall); err != nil {
		return err
	}
	if jsonMode {
		// stdout stays byte-identical across runs: drop the host-side
		// throughput (the only nondeterministic row content) — it is
		// recorded in the BENCH_fig<N>.json file instead.
		det := make([]figures.MatmulRow, len(rows))
		copy(det, rows)
		for i := range det {
			det[i].Host = nil
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Figure int                 `json:"figure"`
			Rows   []figures.MatmulRow `json:"rows"`
			Phi    *phimodel.Result    `json:"xeonPhiModel,omitempty"`
		}{figures.FigureForHarts(h), det, phi})
	}
	fmt.Print(figures.FormatMatmulFigure(rows, phi))
	return nil
}

// scaleFigure runs the E18 weak-scaling sweep (64/256/1024 cores) and
// records it as BENCH_fig22.json, reusing the matmul-figure row shape
// so benchdiff tracks its cycles, digests and host throughput.
func scaleFigure() error {
	start := time.Now()
	rows, err := figures.RunScaleFigure()
	if err != nil {
		return err
	}
	wall := time.Since(start)
	if err := writeBenchRecord(figures.FigureScale, rows, nil, wall); err != nil {
		return err
	}
	if jsonMode {
		det := make([]figures.MatmulRow, len(rows))
		copy(det, rows)
		for i := range det {
			det[i].Host = nil
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Figure int                 `json:"figure"`
			Rows   []figures.MatmulRow `json:"rows"`
		}{figures.FigureScale, det})
	}
	fmt.Print(figures.FormatScaleFigure(rows))
	return nil
}

func determinism() error {
	var reports []figures.DetReport
	for _, v := range workloads.Variants {
		rep, err := figures.RunDeterminism(v, 16, 3)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	fmt.Print(figures.FormatDeterminism(reports))
	return nil
}

func ablation() error {
	rows, err := figures.RunHartAblation(20000)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblation(rows))
	return nil
}

func locality() error {
	var rows []figures.LocalityRow
	for _, h := range []int{16, 64} {
		row, err := figures.RunLocality(h, 128)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Print(figures.FormatLocality(rows))
	return nil
}

// designAblations sweeps the machine parameters DESIGN.md calls out.
func designAblations() error {
	hop, err := figures.RunHopLatAblation(workloads.Base, 16, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8a — router hop latency sweep (base, 16 harts)", hop))
	bank, err := figures.RunBankLatAblation(workloads.Base, 16, []int{1, 3, 6, 12})
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8b — shared-bank latency sweep (base, 16 harts)", bank))
	mo, err := figures.RunMemOrderAblation(workloads.Copy, 16)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8c — per-hart memory issue order (copy, 16 harts)", mo))
	fu, err := figures.RunFULatAblation(workloads.Base, 16, []int{17, 68})
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8d — divider latency (off the matmul critical path)", fu))
	return nil
}

// response runs the E10 input-to-actuation sweep.
func response() error {
	rep, err := figures.RunResponseSweep(responsePhases)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatResponse(rep))
	return nil
}

// chips runs the Figure 15 multi-chip experiment.
func chips() error {
	pts, err := figures.RunChipAblation(workloads.Base, 16, []int{0, 2, 1}, 25)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints(
		"E9 — Figure 15 chip lines (4 cores as 1, 2 or 4 chips; 25-cycle edges)", pts))
	return nil
}

// ioExperiment runs the Figure 16 sensor fusion with two different input
// schedules: same fused outputs, different cycle counts (E6).
func ioExperiment() error {
	src := workloads.SensorFusionSource(2)
	asmText, err := cc.BuildProgram(src, cc.DefaultOptions())
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return err
	}
	runOnce := func(base uint64) (uint64, []lbp.ActuatorWrite, error) {
		var devices []lbp.Device
		for i := 0; i < 4; i++ {
			devices = append(devices, &lbp.Sensor{
				ValueAddr: prog.Symbols["sval"] + uint32(4*i),
				FlagAddr:  prog.Symbols["sflag"] + uint32(4*i),
				Events: []lbp.SensorEvent{
					{Cycle: base + uint64(101*i), Value: uint32(10 * (i + 1))},
					{Cycle: 4*base + uint64(57*i), Value: uint32(20 * (i + 1))},
				},
			})
		}
		act := &lbp.Actuator{
			ValueAddr: prog.Symbols["factuator"],
			SeqAddr:   prog.Symbols["aseq"],
		}
		devices = append(devices, act)
		sess, err := sim.New(sim.Spec{
			Program:   prog,
			Cores:     1,
			Devices:   devices,
			MaxCycles: 50_000_000,
		})
		if err != nil {
			return 0, nil, err
		}
		res, err := sess.Run()
		if err != nil {
			return 0, nil, err
		}
		return res.Stats.Cycles, act.Writes, nil
	}
	fmt.Println("E6 — Figure 16 sensor fusion under two input schedules")
	for _, base := range []uint64{1000, 9000} {
		cycles, writes, err := runOnce(base)
		if err != nil {
			return err
		}
		fmt.Printf("schedule base=%5d: cycles=%8d actuator:", base, cycles)
		for _, w := range writes {
			fmt.Printf(" (%d @%d)", w.Value, w.Cycle)
		}
		fmt.Println()
	}
	fmt.Println("(same fused values, cycle counts follow the inputs; ordering is preserved)")
	return nil
}
