// lbp-cc compiles a MiniC (Deterministic OpenMP dialect) source file to
// RV32IM + X_PAR assembly for the LBP processor.
//
// Usage:
//
//	lbp-cc [-o out.s] [-cores N] [-bank BYTES] file.c
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/cc"
	"repro/internal/lbp"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	cores := flag.Int("cores", 0, "target core count (bounds __bank placement; 0 = unchecked)")
	bank := flag.Uint("bank", 1<<16, "shared bank size in bytes (power of two)")
	reserve := flag.Uint("reserve", 4096, "per-bank reserve before __bank data, in bytes")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbp-cc [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// The flag help promises a power of two; enforce it (and the uint32
	// address-space bound) instead of silently truncating the bank size,
	// matching lbp-run. The reserve must leave room inside the bank.
	if *bank == 0 || *bank > math.MaxUint32 || *bank&(*bank-1) != 0 {
		fmt.Fprintf(os.Stderr, "lbp-cc: -bank %d must be a power of two that fits in 32 bits\n", *bank)
		os.Exit(2)
	}
	if *reserve >= *bank {
		fmt.Fprintf(os.Stderr, "lbp-cc: -reserve %d must be smaller than the %d-byte bank\n", *reserve, *bank)
		os.Exit(2)
	}
	if *cores != 0 {
		if err := lbp.ValidateGeometry(*cores, 0); err != nil {
			fmt.Fprintf(os.Stderr, "lbp-cc: -cores: %v\n", err)
			os.Exit(2)
		}
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opt := cc.DefaultOptions()
	opt.Cores = *cores
	opt.SharedBankBytes = uint32(*bank)
	opt.BankReserveBytes = uint32(*reserve)
	asmText, err := cc.BuildProgram(string(src), opt)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(asmText)
		return
	}
	if err := os.WriteFile(*out, []byte(asmText), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbp-cc:", err)
	os.Exit(1)
}
