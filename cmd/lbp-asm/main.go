// lbp-asm assembles RV32IM + X_PAR assembly into an LBP program image,
// or prints a listing with -list.
//
// Usage:
//
//	lbp-asm [-o out.img] [-list] file.s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	out := flag.String("o", "", "image output file (default: stdout)")
	list := flag.Bool("list", false, "print a disassembly listing instead of the image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbp-asm [flags] file.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src), asm.Options{})
	if err != nil {
		fatal(err)
	}
	if *list {
		for i, w := range prog.Text {
			pc := prog.TextBase + uint32(4*i)
			fmt.Printf("%08x: %08x  %s\n", pc, w, isa.Disassemble(isa.Decode(w), pc))
		}
		for _, name := range prog.SymbolsSorted() {
			fmt.Printf("%08x  %s\n", prog.Symbols[name], name)
		}
		return
	}
	if *out == "" {
		if err := prog.WriteImage(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := writeImageTo(prog, f); err != nil {
		fatal(err)
	}
}

// imageWriter is the part of asm.Program that writeImageTo needs.
type imageWriter interface {
	WriteImage(w io.Writer) error
}

// writeImageTo writes the image and closes w, reporting the first error
// of either step. An image written to a full disk often only fails at
// Close — a deferred, unchecked Close would report success and leave a
// truncated image behind.
func writeImageTo(prog imageWriter, w io.WriteCloser) error {
	werr := prog.WriteImage(w)
	cerr := w.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbp-asm:", err)
	os.Exit(1)
}
