// lbp-asm assembles RV32IM + X_PAR assembly into an LBP program image,
// or prints a listing with -list.
//
// Usage:
//
//	lbp-asm [-o out.img] [-list] file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	out := flag.String("o", "", "image output file (default: stdout)")
	list := flag.Bool("list", false, "print a disassembly listing instead of the image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbp-asm [flags] file.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src), asm.Options{})
	if err != nil {
		fatal(err)
	}
	if *list {
		for i, w := range prog.Text {
			pc := prog.TextBase + uint32(4*i)
			fmt.Printf("%08x: %08x  %s\n", pc, w, isa.Disassemble(isa.Decode(w), pc))
		}
		for _, name := range prog.SymbolsSorted() {
			fmt.Printf("%08x  %s\n", prog.Symbols[name], name)
		}
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := prog.WriteImage(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbp-asm:", err)
	os.Exit(1)
}
