package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
)

// failingCloser counts bytes written successfully but fails at Close —
// the signature of a file on a disk that fills while the OS flushes.
type failingCloser struct {
	buf    bytes.Buffer
	closed bool
}

func (f *failingCloser) Write(p []byte) (int, error) { return f.buf.Write(p) }
func (f *failingCloser) Close() error {
	f.closed = true
	return errors.New("close: no space left on device")
}

type failingWriter struct {
	closed bool
}

func (f *failingWriter) Write(p []byte) (int, error) { return 0, errors.New("write: broken pipe") }
func (f *failingWriter) Close() error {
	f.closed = true
	return errors.New("close: also failed")
}

func testProgram(t *testing.T) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble("main:\n\tli t0, -1\n\tli ra, 0\n\tp_ret\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// Regression test: the image writer used `defer f.Close()`, so a Close
// error (the only place a truncated image surfaces on some filesystems)
// was silently dropped and lbp-asm exited 0 with a corrupt output file.
func TestWriteImageToReportsCloseError(t *testing.T) {
	prog := testProgram(t)
	fc := &failingCloser{}
	err := writeImageTo(prog, fc)
	if err == nil {
		t.Fatal("close error was dropped")
	}
	if !strings.Contains(err.Error(), "no space left") {
		t.Errorf("err = %v, want the close error", err)
	}
	if !fc.closed {
		t.Error("writer was not closed")
	}
	if fc.buf.Len() == 0 {
		t.Error("image was never written")
	}
}

// A write error takes precedence over a close error, and the writer is
// still closed (no descriptor leak on the error path).
func TestWriteImageToPrefersWriteError(t *testing.T) {
	prog := testProgram(t)
	fw := &failingWriter{}
	err := writeImageTo(prog, fw)
	if err == nil || !strings.Contains(err.Error(), "broken pipe") {
		t.Errorf("err = %v, want the write error", err)
	}
	if !fw.closed {
		t.Error("writer must be closed even when the write failed")
	}
}

// The happy path round-trips: what writeImageTo emits, ReadImage accepts.
func TestWriteImageToRoundTrip(t *testing.T) {
	prog := testProgram(t)
	var buf bytes.Buffer
	if err := writeImageTo(prog, nopWriteCloser{&buf}); err != nil {
		t.Fatal(err)
	}
	got, err := asm.ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Text) != len(prog.Text) || got.Entry != prog.Entry {
		t.Errorf("round trip mismatch: %d/%d words, entry %#x/%#x",
			len(got.Text), len(prog.Text), got.Entry, prog.Entry)
	}
}

type nopWriteCloser struct{ *bytes.Buffer }

func (nopWriteCloser) Close() error { return nil }
