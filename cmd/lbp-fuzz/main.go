// lbp-fuzz is the whole-program determinism fuzzer: it generates
// random MiniC + Deterministic OpenMP programs (internal/fuzzgen),
// compiles each one with internal/cc, runs it on simulated LBP
// machines across a {cores} × {-simworkers} × {-ffwd} matrix, and
// requires every run to reproduce the Go reference evaluator's
// sequential result bit-for-bit — with all runs on one machine
// geometry sharing a single trace digest.
//
// Usage:
//
//	lbp-fuzz [-n 100] [-seed 1] [-maxcores 4] [-max CYCLES] [-workers 1,3] [-ffwd both|on|off] [-crashdir DIR] [-v]
//
// Any divergence is minimized with the built-in shrinker and written
// to -crashdir as a <name>.c program plus a <name>.json reference
// expectation, ready to check in under testdata/fuzz/ where the
// corpus replay test picks it up. A failing campaign exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/fuzzgen"
)

func main() {
	n := flag.Int("n", 100, "number of programs to generate and check")
	seed := flag.Int64("seed", 1, "master seed (each program derives its own sub-seed)")
	maxCores := flag.Int("maxcores", 4, "largest machine of the cores ladder {1,2,4,256}")
	maxCycles := flag.Uint64("max", 0, "cycle budget per run (0 = 20M)")
	workers := flag.String("workers", "1,3", "comma-separated -simworkers values to cross")
	ffwd := flag.String("ffwd", "both", "fast-forward settings to cross: both|on|off")
	crashdir := flag.String("crashdir", "testdata/fuzz", "directory receiving minimized failing programs")
	verbose := flag.Bool("v", false, "log every program, not just failures")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lbp-fuzz [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *n <= 0 {
		fmt.Fprintf(os.Stderr, "lbp-fuzz: -n %d must be positive\n", *n)
		os.Exit(2)
	}
	ws, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbp-fuzz: %v\n", err)
		os.Exit(2)
	}
	ff, err := parseFFwd(*ffwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbp-fuzz: %v\n", err)
		os.Exit(2)
	}
	if *maxCores < 1 {
		fmt.Fprintf(os.Stderr, "lbp-fuzz: -maxcores %d must be positive\n", *maxCores)
		os.Exit(2)
	}

	opt := fuzzgen.CheckOptions{
		MaxCycles: *maxCycles,
		Workers:   ws,
		FFwd:      ff,
		MaxCores:  *maxCores,
	}
	failed := 0
	stats := fuzzgen.Campaign(*seed, *n, fuzzgen.GenConfig{}, opt,
		func(i int, p *fuzzgen.Prog, f *fuzzgen.Failure) {
			if f == nil {
				if *verbose {
					fmt.Fprintf(os.Stderr, "lbp-fuzz: #%d seed=%d ok\n", i, p.Seed)
				} else if (i+1)%25 == 0 {
					fmt.Fprintf(os.Stderr, "lbp-fuzz: %d programs checked\n", i+1)
				}
				return
			}
			failed++
			name := fmt.Sprintf("fuzz-%d-%d", *seed, i)
			fmt.Fprintf(os.Stderr, "lbp-fuzz: #%d seed=%d FAILED (%s): %s\n",
				i, p.Seed, f.Stage, f.Detail)
			if f.Prog != nil {
				if err := fuzzgen.WriteCorpus(*crashdir, name, f.Prog); err != nil {
					fmt.Fprintf(os.Stderr, "lbp-fuzz: writing %s: %v\n", name, err)
				} else {
					fmt.Fprintf(os.Stderr, "lbp-fuzz: minimized repro written to %s/%s.c\n",
						*crashdir, name)
				}
			}
			fmt.Fprintf(os.Stderr, "lbp-fuzz: minimized source:\n%s", f.Source)
		})
	fmt.Printf("lbp-fuzz: %d programs, %d runs, %d failures (seed %d)\n",
		stats.Programs, stats.Runs, len(stats.Failures), *seed)
	if len(stats.Failures) > 0 {
		os.Exit(1)
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-workers %q: entries must be non-negative integers", s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers %q: need at least one value", s)
	}
	return out, nil
}

func parseFFwd(s string) ([]bool, error) {
	switch s {
	case "both":
		return []bool{true, false}, nil
	case "on":
		return []bool{true}, nil
	case "off":
		return []bool{false}, nil
	}
	return nil, fmt.Errorf("-ffwd %q: must be both, on or off", s)
}
