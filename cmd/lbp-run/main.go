// lbp-run executes a program on a simulated LBP machine and reports the
// run statistics. It accepts MiniC sources (.c), assembly (.s) or
// serialized images (.img); the format is chosen by extension.
//
// Usage:
//
//	lbp-run [-cores N] [-max CYCLES] [-bank BYTES] [-simworkers N] [-ffwd=false] [-digest] [-tail N] [-percore] [-stats] [-chrome FILE] [-checkpoint FILE -every N] file.{c,s,img}
//	lbp-run -resume FILE [-max CYCLES] [-simworkers N] [-ffwd=false] [flags]
//
// -simworkers shards the machine's cycle loop across N host threads
// (0 = all CPUs); -ffwd=false disables idle-cycle fast-forward. Both are
// host-side knobs: cycle counts, stats, digests and -chrome exports are
// bit-identical for every setting.
//
// -stats enables the deterministic performance counters and prints a
// cycle-attribution report after the run: where every hart-cycle went
// (commit or a named stall cause), the retired-instruction mix, pipeline
// stage occupancy, per-link-class wait cycles and local/remote memory
// latency histograms. Profiling never changes the run itself — cycle
// counts and digests are identical with and without -stats.
//
// -chrome FILE exports the retained trace events (see -tail; a default
// ring is kept if -tail is 0) as Chrome trace-event JSON for
// chrome://tracing or Perfetto, with hart lifetimes shown as spans.
//
// -checkpoint FILE -every N pauses the run every N cycles and rewrites
// FILE with the machine's complete serialized state. -resume FILE picks
// such a run back up (no program argument: the program lives inside the
// checkpoint) and reproduces the uninterrupted run bit-exactly — same
// halt, stats, digest and trace, for any -simworkers/-ffwd combination
// on either side of the split. -max is always the absolute cycle budget;
// a resumed run counts the cycles already simulated against it.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/lbp"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	cores := flag.Int("cores", 4, "number of LBP cores")
	max := flag.Uint64("max", 100_000_000, "cycle budget")
	bank := flag.Uint("bank", 1<<16, "shared bank size in bytes (power of two)")
	digest := flag.Bool("digest", false, "print the deterministic event-trace digest")
	perCore := flag.Bool("percore", false, "print per-core retired instructions and IPC")
	tail := flag.Int("tail", 0, "print the last N trace events")
	stats := flag.Bool("stats", false, "enable performance counters and print the cycle-attribution report")
	chrome := flag.String("chrome", "", "write the retained trace events as Chrome trace-event JSON to `file`")
	simWorkers := flag.Int("simworkers", 1, "host threads stepping the machine (0 = all CPUs, 1 = single-threaded)")
	ffwd := flag.Bool("ffwd", true, "fast-forward idle cycles (never changes simulated results)")
	ckptFile := flag.String("checkpoint", "", "rewrite `file` with the serialized machine state every -every cycles")
	every := flag.Uint64("every", 0, "checkpoint interval in cycles (requires -checkpoint)")
	resume := flag.String("resume", "", "resume a run from checkpoint `file` instead of loading a program")
	flag.Parse()
	if *simWorkers < 0 {
		fmt.Fprintf(os.Stderr, "lbp-run: -simworkers %d must not be negative (0 = all CPUs)\n", *simWorkers)
		os.Exit(2)
	}
	if err := lbp.ValidateGeometry(*cores, 0); err != nil {
		fmt.Fprintf(os.Stderr, "lbp-run: -cores: %v\n", err)
		os.Exit(2)
	}
	if *tail < 0 {
		fmt.Fprintf(os.Stderr, "lbp-run: -tail %d must not be negative\n", *tail)
		os.Exit(2)
	}
	if (*ckptFile == "") != (*every == 0) {
		fmt.Fprintln(os.Stderr, "lbp-run: -checkpoint FILE and -every N (positive) must be used together")
		os.Exit(2)
	}

	var sess *sim.Session
	if *resume != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "lbp-run: -resume takes no program argument (the checkpoint carries the program)")
			os.Exit(2)
		}
		data, err := os.ReadFile(*resume)
		if err != nil {
			fatal(err)
		}
		sess, err = sim.Resume(data, sim.ResumeSpec{
			MaxCycles:     *max,
			SimWorkers:    runWorkers(*simWorkers),
			NoFastForward: !*ffwd,
		})
		if err != nil {
			fatal(err)
		}
		// Observers travel inside the checkpoint; flags can only report
		// what the original run recorded.
		if (*digest || *tail > 0 || *chrome != "") && sess.Recorder() == nil {
			fatal(fmt.Errorf("checkpoint %s has no trace recorder; rerun the original with -digest or -tail", *resume))
		}
		// A digest-only recorder folds events but retains none: -chrome
		// would silently write an empty or truncated timeline.
		if *chrome != "" && sess.Recorder().RingSize() == 0 {
			fatal(fmt.Errorf("checkpoint %s retained no trace ring; rerun the original with -tail N to keep events for -chrome", *resume))
		}
		if *stats && sess.PerfSnapshot() == nil {
			fatal(fmt.Errorf("checkpoint %s was not profiled; rerun the original with -stats", *resume))
		}
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: lbp-run [flags] file.{c,s,img}")
			flag.PrintDefaults()
			os.Exit(2)
		}
		// The flag help promises a power of two; enforce it (and the uint32
		// address-space bound) instead of silently truncating the bank size.
		if *bank == 0 || *bank > math.MaxUint32 || *bank&(*bank-1) != 0 {
			fmt.Fprintf(os.Stderr, "lbp-run: -bank %d must be a power of two that fits in 32 bits\n", *bank)
			os.Exit(2)
		}
		prog, err := sim.LoadFile(flag.Arg(0), *cores, uint32(*bank))
		if err != nil {
			fatal(err)
		}
		ring := *tail
		if *chrome != "" && ring < 1<<16 {
			ring = 1 << 16 // keep enough events for a useful timeline
		}
		sess, err = sim.New(sim.Spec{
			Program:         prog,
			Cores:           *cores,
			SharedBankBytes: uint32(*bank),
			MaxCycles:       *max,
			Trace:           sim.TraceSpec{Digest: *digest, Ring: ring},
			Profile:         *stats,
			SimWorkers:      runWorkers(*simWorkers),
			NoFastForward:   !*ffwd,
		})
		if err != nil {
			fatal(err)
		}
	}

	var res *lbp.Result
	var err error
	if *ckptFile != "" {
		res, err = sess.RunWithCheckpoints(*every, func(cp []byte) error {
			return os.WriteFile(*ckptFile, cp, 0o644)
		})
	} else {
		res, err = sess.Run()
	}
	if err != nil {
		fatal(err)
	}
	report(sess, res, *perCore, *stats, *digest, *tail, *chrome)
}

// runWorkers maps the -simworkers convention (0 = all CPUs) onto the
// sim.Spec convention (negative = all CPUs, 0/1 = single-threaded).
func runWorkers(n int) int {
	if n == 0 {
		return -1
	}
	return n
}

// report prints the run summary and the requested observer output.
func report(sess *sim.Session, res *lbp.Result, perCore, stats, digest bool, tail int, chrome string) {
	cores := sess.Config().Cores
	st := res.Stats
	fmt.Printf("halt:     %s\n", res.Halt)
	fmt.Printf("cycles:   %d\n", st.Cycles)
	fmt.Printf("retired:  %d\n", st.Retired)
	fmt.Printf("IPC:      %.2f (peak %d)\n", st.IPC(), cores)
	fmt.Printf("forks:    %d  joins: %d  signals: %d  sends: %d\n",
		st.Forks, st.Joins, st.Signals, st.RemoteSends)
	fmt.Printf("memory:   local=%d shared-local=%d shared-remote=%d cv=%d\n",
		res.Mem.LocalAccesses, res.Mem.SharedLocal, res.Mem.SharedRemote, res.Mem.CVWrites)
	busy := 0
	for _, r := range st.PerHart {
		if r > 0 {
			busy++
		}
	}
	fmt.Printf("harts:    %d of %d retired instructions\n", busy, len(st.PerHart))
	if perCore {
		hpc := lbp.HartsPerCore
		for c := 0; c < cores; c++ {
			var sum uint64
			for h := 0; h < hpc; h++ {
				sum += st.PerHart[hpc*c+h]
			}
			fmt.Printf("core %2d:  retired=%d ipc=%.2f (harts %v)\n",
				c, sum, float64(sum)/float64(st.Cycles),
				st.PerHart[hpc*c:hpc*(c+1)])
		}
	}
	if stats {
		fmt.Print(sess.PerfSnapshot().Format())
	}
	rec := sess.Recorder()
	if rec != nil {
		if digest {
			fmt.Printf("digest:   %#x over %d events\n", rec.Digest(), rec.Count())
		}
		for _, e := range rec.Last(tail) {
			fmt.Println(e)
		}
	}
	if chrome != "" {
		if err := exportChrome(chrome, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome:   trace written to %s\n", chrome)
	}
}

// exportChrome writes the recorder's ring to path, reporting write and
// close errors (a full disk must not pass silently).
func exportChrome(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rec.WriteChrome(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbp-run:", err)
	os.Exit(1)
}
