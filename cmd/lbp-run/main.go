// lbp-run executes a program on a simulated LBP machine and reports the
// run statistics. It accepts MiniC sources (.c), assembly (.s) or
// serialized images (.img); the format is chosen by extension.
//
// Usage:
//
//	lbp-run [-cores N] [-max CYCLES] [-bank BYTES] [-simworkers N] [-ffwd=false] [-digest] [-tail N] [-percore] [-stats] [-chrome FILE] file.{c,s,img}
//
// -simworkers shards the machine's cycle loop across N host threads
// (0 = all CPUs); -ffwd=false disables idle-cycle fast-forward. Both are
// host-side knobs: cycle counts, stats, digests and -chrome exports are
// bit-identical for every setting.
//
// -stats enables the deterministic performance counters and prints a
// cycle-attribution report after the run: where every hart-cycle went
// (commit or a named stall cause), the retired-instruction mix, pipeline
// stage occupancy, per-link-class wait cycles and local/remote memory
// latency histograms. Profiling never changes the run itself — cycle
// counts and digests are identical with and without -stats.
//
// -chrome FILE exports the retained trace events (see -tail; a default
// ring is kept if -tail is 0) as Chrome trace-event JSON for
// chrome://tracing or Perfetto, with hart lifetimes shown as spans.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/trace"
)

func main() {
	cores := flag.Int("cores", 4, "number of LBP cores")
	max := flag.Uint64("max", 100_000_000, "cycle budget")
	bank := flag.Uint("bank", 1<<16, "shared bank size in bytes (power of two)")
	digest := flag.Bool("digest", false, "print the deterministic event-trace digest")
	perCore := flag.Bool("percore", false, "print per-core retired instructions and IPC")
	tail := flag.Int("tail", 0, "print the last N trace events")
	stats := flag.Bool("stats", false, "enable performance counters and print the cycle-attribution report")
	chrome := flag.String("chrome", "", "write the retained trace events as Chrome trace-event JSON to `file`")
	simWorkers := flag.Int("simworkers", 1, "host threads stepping the machine (0 = all CPUs, 1 = single-threaded)")
	ffwd := flag.Bool("ffwd", true, "fast-forward idle cycles (never changes simulated results)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbp-run [flags] file.{c,s,img}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// The flag help promises a power of two; enforce it (and the uint32
	// address-space bound) instead of silently truncating the bank size.
	if *bank == 0 || *bank > math.MaxUint32 || *bank&(*bank-1) != 0 {
		fmt.Fprintf(os.Stderr, "lbp-run: -bank %d must be a power of two that fits in 32 bits\n", *bank)
		os.Exit(2)
	}
	path := flag.Arg(0)
	prog, err := load(path, *cores, uint32(*bank))
	if err != nil {
		fatal(err)
	}
	cfg := lbp.DefaultConfig(*cores)
	cfg.Mem.SharedBytes = uint32(*bank)
	m := lbp.New(cfg)
	var rec *trace.Recorder
	if *digest || *tail > 0 || *chrome != "" {
		ring := *tail
		if *chrome != "" && ring < 1<<16 {
			ring = 1 << 16 // keep enough events for a useful timeline
		}
		rec = trace.New(ring)
		m.SetTrace(rec)
	}
	if *stats {
		m.EnableProfiling()
	}
	m.SetSimWorkers(*simWorkers)
	m.SetFastForward(*ffwd)
	if err := m.LoadProgram(prog); err != nil {
		fatal(err)
	}
	res, err := m.Run(*max)
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fmt.Printf("halt:     %s\n", res.Halt)
	fmt.Printf("cycles:   %d\n", st.Cycles)
	fmt.Printf("retired:  %d\n", st.Retired)
	fmt.Printf("IPC:      %.2f (peak %d)\n", st.IPC(), *cores)
	fmt.Printf("forks:    %d  joins: %d  signals: %d  sends: %d\n",
		st.Forks, st.Joins, st.Signals, st.RemoteSends)
	fmt.Printf("memory:   local=%d shared-local=%d shared-remote=%d cv=%d\n",
		res.Mem.LocalAccesses, res.Mem.SharedLocal, res.Mem.SharedRemote, res.Mem.CVWrites)
	busy := 0
	for _, r := range st.PerHart {
		if r > 0 {
			busy++
		}
	}
	fmt.Printf("harts:    %d of %d retired instructions\n", busy, len(st.PerHart))
	if *perCore {
		hpc := lbp.HartsPerCore
		for c := 0; c < *cores; c++ {
			var sum uint64
			for h := 0; h < hpc; h++ {
				sum += st.PerHart[hpc*c+h]
			}
			fmt.Printf("core %2d:  retired=%d ipc=%.2f (harts %v)\n",
				c, sum, float64(sum)/float64(st.Cycles),
				st.PerHart[hpc*c:hpc*(c+1)])
		}
	}
	if *stats {
		fmt.Print(m.PerfSnapshot().Format())
	}
	if rec != nil {
		if *digest {
			fmt.Printf("digest:   %#x over %d events\n", rec.Digest(), rec.Count())
		}
		for _, e := range rec.Last(*tail) {
			fmt.Println(e)
		}
	}
	if *chrome != "" {
		if err := exportChrome(*chrome, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome:   trace written to %s\n", *chrome)
	}
}

// exportChrome writes the recorder's ring to path, reporting write and
// close errors (a full disk must not pass silently).
func exportChrome(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rec.WriteChrome(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// load builds a program from a .c, .s or .img file.
func load(path string, cores int, bank uint32) (*asm.Program, error) {
	switch {
	case strings.HasSuffix(path, ".img"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return asm.ReadImage(f)
	case strings.HasSuffix(path, ".c"):
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		opt := cc.DefaultOptions()
		opt.Cores = cores
		opt.SharedBankBytes = bank
		asmText, err := cc.BuildProgram(string(src), opt)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(asmText, asm.Options{})
	default: // .s
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(string(src), asm.Options{})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbp-run:", err)
	os.Exit(1)
}
