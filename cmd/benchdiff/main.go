// benchdiff compares two BENCH_fig<N>.json records produced by lbp-bench.
//
// Simulated results are deterministic, so any change in cycles, retired
// instructions, IPC, access mix, trace digests or event counts between the
// two records is a failure — the simulator's behavior drifted. Host-side
// throughput (simulated cycles per host second) is allowed to vary, but a
// regression of more than -tolerance (default 10%) also fails, so the
// performance trajectory of the simulator itself is guarded.
//
// Usage:
//
//	benchdiff [-tolerance 0.10] old.json new.json
//
// Exit status: 0 when the records agree (and throughput held), 1 on any
// simulated difference or throughput regression, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

// benchFile mirrors the fields of lbp-bench's benchRecord that benchdiff
// inspects; unknown fields are ignored so the format may grow.
type benchFile struct {
	Figure      int                 `json:"figure"`
	Rows        []figures.MatmulRow `json:"rows"`
	WallTimeSec float64             `json:"wallTimeSec"`
	SimWorkers  int                 `json:"simWorkers"`
}

func readBench(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional host-throughput regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance F] old.json new.json")
		os.Exit(2)
	}
	// A negative tolerance fails every comparison and one >= 1 disables
	// the throughput guard entirely; both are usage errors.
	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintf(os.Stderr, "benchdiff: -tolerance %g must be in [0, 1)\n", *tolerance)
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance F] old.json new.json")
		os.Exit(2)
	}
	oldB, err := readBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newB, err := readBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
		failed = true
	}
	if oldB.Figure != newB.Figure {
		fail("figure mismatch: %d vs %d", oldB.Figure, newB.Figure)
	}
	if len(oldB.Rows) != len(newB.Rows) {
		fail("row count changed: %d vs %d", len(oldB.Rows), len(newB.Rows))
	}
	n := len(oldB.Rows)
	if len(newB.Rows) < n {
		n = len(newB.Rows)
	}
	for i := 0; i < n; i++ {
		o, w := oldB.Rows[i], newB.Rows[i]
		if o.Variant != w.Variant || o.Harts != w.Harts {
			fail("row %d identity changed: %s/%d vs %s/%d", i, o.Variant, o.Harts, w.Variant, w.Harts)
			continue
		}
		id := fmt.Sprintf("row %s/%d", o.Variant, o.Harts)
		if o.Cycles != w.Cycles {
			fail("%s: cycles changed: %d vs %d", id, o.Cycles, w.Cycles)
		}
		if o.Retired != w.Retired {
			fail("%s: retired changed: %d vs %d", id, o.Retired, w.Retired)
		}
		if o.Digest != w.Digest || o.Events != w.Events {
			fail("%s: trace digest changed: %#x/%d vs %#x/%d", id, o.Digest, o.Events, w.Digest, w.Events)
		}
		if o.Remote != w.Remote || o.Local != w.Local {
			fail("%s: access mix changed: remote %d/local %d vs remote %d/local %d",
				id, o.Remote, o.Local, w.Remote, w.Local)
		}
		if o.Host == nil || w.Host == nil {
			continue // throughput not recorded on one side; nothing to guard
		}
		oc, wc := o.Host.CyclesPerSec, w.Host.CyclesPerSec
		if oc <= 0 || wc <= 0 {
			continue
		}
		ratio := wc / oc
		fmt.Printf("%s: %.3g -> %.3g cycles/s (%.2fx)\n", id, oc, wc, ratio)
		if ratio < 1.0-*tolerance {
			fail("%s: host throughput regressed %.1f%% (limit %.0f%%)",
				id, (1-ratio)*100, *tolerance*100)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: fig%d OK (%d rows identical, throughput within %.0f%%)\n",
		newB.Figure, n, *tolerance*100)
}
